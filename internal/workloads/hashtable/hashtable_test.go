package hashtable

import (
	"testing"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/monitor"
	"repro/internal/sim"
)

func TestHashTableConsistency(t *testing.T) {
	cfg := sim.Small(4)
	cfg.Seed = 1
	m := sim.New(cfg)
	w := Build(m, Options{
		Threads:  8,
		Deadline: 10_000_000,
		NewLock:  func(n string) locks.Lock { return locks.NewMCS(m, n) },
	})
	m.Run(15_000_000)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	var ops int64
	for _, th := range m.Threads() {
		ops += th.Ops
	}
	if ops == 0 {
		t.Fatal("no hash-table operations completed")
	}
}

func TestHashTableWithFlexGuard(t *testing.T) {
	cfg := sim.Small(2)
	cfg.Seed = 7
	m := sim.New(cfg)
	mon := monitor.Attach(m)
	rt := core.NewRuntime(m, mon)
	w := Build(m, Options{
		Threads:  6,
		Buckets:  20,
		Deadline: 10_000_000,
		NewLock:  func(n string) locks.Lock { return rt.NewLock(n) },
	})
	m.Run(15_000_000)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHashTableDefaultBuckets(t *testing.T) {
	cfg := sim.Small(2)
	cfg.Seed = 2
	m := sim.New(cfg)
	w := Build(m, Options{
		Threads:  2,
		Deadline: 1_000_000,
		NewLock:  func(n string) locks.Lock { return locks.NewTATAS(m, n) },
	})
	if len(w.buckets) != 100 {
		t.Fatalf("default bucket count %d, want 100 (one lock each, as in the paper)", len(w.buckets))
	}
	m.Run(2_000_000)
}
