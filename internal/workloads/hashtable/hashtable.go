// Package hashtable implements the hash-table microbenchmark of §5.2
// (Figures 3a–d): a table of 100 buckets, each protected by its own lock,
// accessed under a Zipfian key distribution that is periodically re-shifted
// across the value range so the hot bucket moves. Throughput is hash-table
// operations per second.
package hashtable

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/locks"
	"repro/internal/sim"
)

// slotsPerBucket is the number of key/value slots scanned inside a bucket.
const slotsPerBucket = 8

// Options configures the benchmark.
type Options struct {
	Threads  int
	Buckets  int // default 100 (one lock each)
	Deadline sim.Time
	// ShiftEvery re-targets a thread's Zipfian peak after this many
	// operations (default 1024).
	ShiftEvery int
	// WriteFraction in percent (default 50).
	WriteFraction int
	NewLock       func(name string) locks.Lock
}

// bucket is one hash-table bucket: a lock plus slot storage on two cache
// lines (keys and values).
type bucket struct {
	lock locks.Lock
	keys []*sim.Word
	vals []*sim.Word
}

// Workload is a built hash-table benchmark instance.
type Workload struct {
	buckets []*bucket
	// inserted counts successful writes (validation).
	writesDone []uint64
}

// Build creates the table and spawns worker threads.
func Build(m *sim.Machine, o Options) *Workload {
	if o.Threads <= 0 {
		panic("hashtable: Threads must be positive")
	}
	if o.Buckets == 0 {
		o.Buckets = 100
	}
	if o.ShiftEvery == 0 {
		o.ShiftEvery = 1024
	}
	if o.WriteFraction == 0 {
		o.WriteFraction = 50
	}
	w := &Workload{
		buckets:    make([]*bucket, o.Buckets),
		writesDone: make([]uint64, o.Threads),
	}
	for i := range w.buckets {
		b := &bucket{
			lock: o.NewLock(fmt.Sprintf("ht.b%d", i)),
			keys: m.NewWords(fmt.Sprintf("ht.b%d.keys", i), slotsPerBucket),
			vals: m.NewWords(fmt.Sprintf("ht.b%d.vals", i), slotsPerBucket),
		}
		w.buckets[i] = b
	}
	for i := 0; i < o.Threads; i++ {
		i := i
		m.Spawn("ht-worker", func(p *sim.Proc) {
			zipf := dist.NewZipf(o.Buckets, 0.99, p.Rand())
			zipf.ShiftRandom()
			ops := 0
			for p.Now() < o.Deadline {
				if ops%o.ShiftEvery == o.ShiftEvery-1 {
					zipf.ShiftRandom()
				}
				key := uint64(p.Rand().Intn(1 << 20))
				p.Compute(60) // hash the key
				b := w.buckets[zipf.Next()]
				t0 := p.Now()
				write := p.Rand().Intn(100) < o.WriteFraction
				b.lock.Lock(p)
				// Scan the slots for the key.
				slot := int(key % slotsPerBucket)
				for s := 0; s < slotsPerBucket/2; s++ {
					p.Load(b.keys[(slot+s)%slotsPerBucket])
				}
				if write {
					p.Store(b.keys[slot], key)
					p.Store(b.vals[slot], key^0xABCD)
					w.writesDone[i]++
				} else {
					p.Load(b.vals[slot])
				}
				b.lock.Unlock(p)
				p.RecordLatency(p.Now() - t0)
				p.CountOp()
				ops++
			}
		})
	}
	return w
}

// Validate checks that every value slot is consistent with its key slot
// (a torn write under broken mutual exclusion would leave a mismatch).
func (w *Workload) Validate() error {
	for bi, b := range w.buckets {
		for s := range b.keys {
			k, v := b.keys[s].V(), b.vals[s].V()
			if k == 0 && v == 0 {
				continue
			}
			if v != k^0xABCD {
				return fmt.Errorf("bucket %d slot %d: key %d has value %d, want %d", bi, s, k, v, k^0xABCD)
			}
		}
	}
	return nil
}
