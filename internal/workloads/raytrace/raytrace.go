// Package raytrace models SPLASH-2X Raytrace (§5.3, Figures 3m–p): a
// parallel renderer where workers pull tiles from a work queue guarded by
// a single contended lock, among ~45 locks total (the others are touched
// rarely). The bulk of the time is spent tracing rays (pure computation),
// so lock contention only matters at high thread counts.
package raytrace

import (
	"fmt"

	"repro/internal/locks"
	"repro/internal/sim"
)

// Options configures the workload.
type Options struct {
	Threads  int
	Deadline sim.Time
	// TileTicks scales the per-tile computation: virtual ticks charged
	// per ~2048 intersection tests × TileTicks/2 (default 4000 gives
	// tiles of roughly 2–6k ticks).
	TileTicks sim.Time
	// ColdLocks is the number of rarely-used auxiliary locks (default 44,
	// so 45 locks total as in the paper).
	ColdLocks int
	NewLock   func(name string) locks.Lock
}

// Workload is a built raytrace instance.
type Workload struct {
	taskLock  locks.Lock
	nextTile  *sim.Word
	doneTiles *sim.Word
	coldLocks []locks.Lock
	coldData  []*sim.Word
	scene     *scene
	// Checksums accumulates the rendered pixel sums per thread (the
	// actual image output; summed for validation).
	Checksums []float64
}

// Build spawns the renderer threads.
func Build(m *sim.Machine, o Options) *Workload {
	if o.Threads <= 0 {
		panic("raytrace: Threads must be positive")
	}
	if o.TileTicks == 0 {
		o.TileTicks = 4000
	}
	if o.ColdLocks == 0 {
		o.ColdLocks = 44
	}
	w := &Workload{
		taskLock:  o.NewLock("rt.tasks"),
		nextTile:  m.NewWord("rt.next", 0),
		doneTiles: m.NewWord("rt.done", 0),
		coldLocks: make([]locks.Lock, o.ColdLocks),
		coldData:  make([]*sim.Word, o.ColdLocks),
		scene:     newScene(24),
		Checksums: make([]float64, o.Threads),
	}
	for i := range w.coldLocks {
		w.coldLocks[i] = o.NewLock(fmt.Sprintf("rt.cold%d", i))
		w.coldData[i] = m.NewWord(fmt.Sprintf("rt.cold%d.d", i), 0)
	}
	for i := 0; i < o.Threads; i++ {
		i := i
		m.Spawn("rt-worker", func(p *sim.Proc) {
			for p.Now() < o.Deadline {
				// Grab the next tile under the hot lock.
				w.taskLock.Lock(p)
				tile := p.Load(w.nextTile)
				p.Store(w.nextTile, tile+1)
				w.taskLock.Unlock(p)
				// Trace the tile for real (ray-sphere intersections and
				// shadow rays); charge virtual time proportional to the
				// intersection tests actually performed.
				sum, tests := w.scene.renderTile(int(tile))
				w.Checksums[i] += sum
				p.Compute(sim.Time(tests) * o.TileTicks / 2048)
				// Rarely touch an auxiliary lock (shading caches etc.).
				if p.Rand().Intn(64) == 0 {
					k := p.Rand().Intn(len(w.coldLocks))
					w.coldLocks[k].Lock(p)
					v := p.Load(w.coldData[k])
					p.Store(w.coldData[k], v+1)
					w.coldLocks[k].Unlock(p)
				}
				// Record completion under the hot lock (frame buffer merge).
				w.taskLock.Lock(p)
				d := p.Load(w.doneTiles)
				p.Store(w.doneTiles, d+1)
				w.taskLock.Unlock(p)
				p.CountOp()
			}
		})
	}
	return w
}

// Validate checks that every dispatched tile was completed exactly once
// up to the tiles still in flight at shutdown.
func (w *Workload) Validate(threads int) error {
	disp, done := w.nextTile.V(), w.doneTiles.V()
	if done > disp {
		return fmt.Errorf("raytrace: %d tiles done but only %d dispatched", done, disp)
	}
	if disp-done > uint64(threads) {
		return fmt.Errorf("raytrace: %d tiles lost (disp %d, done %d)", disp-done-uint64(threads), disp, done)
	}
	return nil
}
