package raytrace

import (
	"testing"

	"repro/internal/locks"
	"repro/internal/sim"
)

func TestRaytraceTilesAccounted(t *testing.T) {
	cfg := sim.Small(4)
	cfg.Seed = 1
	m := sim.New(cfg)
	w := Build(m, Options{
		Threads:  6,
		Deadline: 10_000_000,
		NewLock:  func(n string) locks.Lock { return locks.NewPosix(m, n) },
	})
	m.Run(20_000_000)
	if err := w.Validate(6); err != nil {
		t.Fatal(err)
	}
	if w.doneTiles.V() == 0 {
		t.Fatal("no tiles rendered")
	}
}

func TestRaytraceLockCount(t *testing.T) {
	cfg := sim.Small(2)
	cfg.Seed = 2
	m := sim.New(cfg)
	created := 0
	w := Build(m, Options{
		Threads:  2,
		Deadline: 1_000_000,
		NewLock: func(n string) locks.Lock {
			created++
			return locks.NewTATAS(m, n)
		},
	})
	if created != 45 {
		t.Fatalf("created %d locks, want 45 (one contended + 44 cold, as in the paper)", created)
	}
	m.Run(2_000_000)
	if err := w.Validate(2); err != nil {
		t.Fatal(err)
	}
}
