package raytrace

import (
	"math"
	"testing"
)

func TestSceneIntersection(t *testing.T) {
	s := &scene{
		spheres: []sphere{{center: vec3{0, 0, 5}, radius: 1, albedo: 0.5}},
		light:   vec3{0, 1, 0},
	}
	// Ray straight at the sphere hits at distance 4.
	d, idx, tests := s.intersect(vec3{0, 0, 0}, vec3{0, 0, 1})
	if idx != 0 || math.Abs(d-4) > 1e-9 {
		t.Fatalf("hit = (%g, %d), want (4, 0)", d, idx)
	}
	if tests != 1 {
		t.Fatalf("tests = %d, want 1", tests)
	}
	// Ray pointing away misses.
	if _, idx, _ := s.intersect(vec3{0, 0, 0}, vec3{0, 0, -1}); idx != -1 {
		t.Fatal("backward ray should miss")
	}
	// Ray offset beyond the radius misses.
	if _, idx, _ := s.intersect(vec3{0, 2, 0}, vec3{0, 0, 1}); idx != -1 {
		t.Fatal("offset ray should miss")
	}
}

func TestSceneNearestHit(t *testing.T) {
	s := &scene{spheres: []sphere{
		{center: vec3{0, 0, 10}, radius: 1},
		{center: vec3{0, 0, 5}, radius: 1},
	}}
	d, idx, _ := s.intersect(vec3{0, 0, 0}, vec3{0, 0, 1})
	if idx != 1 || math.Abs(d-4) > 1e-9 {
		t.Fatalf("nearest hit = (%g, %d), want sphere 1 at 4", d, idx)
	}
}

func TestRenderTileDeterministic(t *testing.T) {
	s := newScene(24)
	c1, n1 := s.renderTile(100)
	c2, n2 := s.renderTile(100)
	if c1 != c2 || n1 != n2 {
		t.Fatalf("rendering not deterministic: (%g,%d) vs (%g,%d)", c1, n1, c2, n2)
	}
	if n1 < tileSize*tileSize*len(s.spheres) {
		t.Fatalf("too few intersection tests: %d", n1)
	}
	// Some tile in the view must actually shade geometry.
	found := false
	for tile := 0; tile < 4096; tile += 7 {
		c, _ := s.renderTile(tile)
		if c > float64(tileSize*tileSize)*0.05+1e-9 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no tile ever hit a sphere — scene misplaced")
	}
}

func TestVecOps(t *testing.T) {
	a := vec3{1, 2, 3}
	b := vec3{4, 5, 6}
	if a.dot(b) != 32 {
		t.Fatalf("dot = %g", a.dot(b))
	}
	n := vec3{3, 0, 4}.norm()
	if math.Abs(n.dot(n)-1) > 1e-12 {
		t.Fatalf("norm not unit: %v", n)
	}
	z := vec3{}.norm()
	if z != (vec3{}) {
		t.Fatal("zero vector norm should stay zero")
	}
}
