package raytrace

import "math"

// The renderer is real: tiles of rays are cast against a procedurally
// generated sphere scene and shaded, and the pixel checksum is carried
// into the simulated critical section. The simulator charges ticks
// proportional to the intersection tests actually performed, so the
// virtual cost tracks the genuine computation (SPLASH-2X Raytrace casts
// rays against a teapot; we cast against spheres).

// vec3 is a 3-component vector.
type vec3 struct{ x, y, z float64 }

func (a vec3) sub(b vec3) vec3      { return vec3{a.x - b.x, a.y - b.y, a.z - b.z} }
func (a vec3) dot(b vec3) float64   { return a.x*b.x + a.y*b.y + a.z*b.z }
func (a vec3) scale(s float64) vec3 { return vec3{a.x * s, a.y * s, a.z * s} }
func (a vec3) add(b vec3) vec3      { return vec3{a.x + b.x, a.y + b.y, a.z + b.z} }

func (a vec3) norm() vec3 {
	l := math.Sqrt(a.dot(a))
	if l == 0 {
		return a
	}
	return a.scale(1 / l)
}

// sphere is one scene primitive.
type sphere struct {
	center vec3
	radius float64
	albedo float64
}

// scene is the procedurally generated world shared by all workers
// (read-only after construction, hence lock-free).
type scene struct {
	spheres []sphere
	light   vec3
}

// newScene builds n spheres on a deterministic spiral.
func newScene(n int) *scene {
	s := &scene{light: vec3{5, 8, -3}.norm()}
	for i := 0; i < n; i++ {
		t := float64(i) * 0.61803398875 // golden-ratio spiral
		r := 1.0 + float64(i%7)*0.25
		s.spheres = append(s.spheres, sphere{
			center: vec3{
				6 * math.Cos(2*math.Pi*t) * (1 + t/8),
				-2 + 0.8*float64(i%5),
				8 + 6*math.Sin(2*math.Pi*t)*(1+t/8),
			},
			radius: r,
			albedo: 0.3 + 0.1*float64(i%7),
		})
	}
	return s
}

// intersect returns the nearest hit distance and sphere index, or
// (inf, -1). tests counts intersection tests performed.
func (s *scene) intersect(origin, dir vec3) (dist float64, idx, tests int) {
	dist = math.Inf(1)
	idx = -1
	for i, sp := range s.spheres {
		tests++
		oc := origin.sub(sp.center)
		b := oc.dot(dir)
		c := oc.dot(oc) - sp.radius*sp.radius
		disc := b*b - c
		if disc <= 0 {
			continue
		}
		t := -b - math.Sqrt(disc)
		if t > 1e-4 && t < dist {
			dist = t
			idx = i
		}
	}
	return dist, idx, tests
}

// tileSize is the square tile edge in pixels.
const tileSize = 8

// renderTile casts tileSize² rays for tile id, returning a pixel-sum
// checksum and the number of intersection tests (the cost driver).
func (s *scene) renderTile(tile int) (checksum float64, tests int) {
	const width = 64 // tiles per row
	tx, ty := tile%width, (tile/width)%width
	origin := vec3{0, 0, -10}
	for py := 0; py < tileSize; py++ {
		for px := 0; px < tileSize; px++ {
			u := (float64(tx*tileSize+px)/float64(width*tileSize) - 0.5) * 2
			v := (float64(ty*tileSize+py)/float64(width*tileSize) - 0.5) * 2
			dir := vec3{u, v, 1}.norm()
			d, idx, n := s.intersect(origin, dir)
			tests += n
			if idx < 0 {
				checksum += 0.05 // sky
				continue
			}
			// Lambertian shading with a shadow ray.
			hit := origin.add(dir.scale(d))
			normal := hit.sub(s.spheres[idx].center).norm()
			_, shadowIdx, n2 := s.intersect(hit.add(normal.scale(1e-3)), s.light)
			tests += n2
			lambert := normal.dot(s.light)
			if lambert < 0 || shadowIdx >= 0 {
				lambert = 0
			}
			checksum += s.spheres[idx].albedo * lambert
		}
	}
	return checksum, tests
}
