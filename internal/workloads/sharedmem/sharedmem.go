// Package sharedmem implements the shared-memory-access microbenchmark of
// §5.2 (Figures 1, 2 and 5): every thread repeatedly acquires one lock,
// reads and writes two cache lines inside the critical section, releases,
// and spins ~100 cycles before the next acquisition. The measured metric
// is the critical-section execution time: acquire + CS + release.
package sharedmem

import (
	"repro/internal/locks"
	"repro/internal/sim"
)

// Options configures the microbenchmark.
type Options struct {
	Threads    int
	Deadline   sim.Time // threads stop starting new operations here
	ThinkTicks sim.Time // delay between critical sections (default 100)
	NewLock    func(name string) locks.Lock
}

// Workload is a built shared-memory-access microbenchmark instance.
type Workload struct {
	Lock  locks.Lock
	lineA *sim.Word
	lineB *sim.Word
}

// Build creates the lock and cache lines and spawns the worker threads.
func Build(m *sim.Machine, o Options) *Workload {
	if o.Threads <= 0 {
		panic("sharedmem: Threads must be positive")
	}
	if o.ThinkTicks == 0 {
		o.ThinkTicks = 100
	}
	w := &Workload{
		Lock:  o.NewLock("shm"),
		lineA: m.NewWord("shm.lineA", 0),
		lineB: m.NewWord("shm.lineB", 0),
	}
	for i := 0; i < o.Threads; i++ {
		m.Spawn("shm-worker", func(p *sim.Proc) {
			for p.Now() < o.Deadline {
				t0 := p.Now()
				w.Lock.Lock(p)
				// The critical section accesses (reads and writes) two
				// cache lines.
				va := p.Load(w.lineA)
				p.Store(w.lineA, va+1)
				vb := p.Load(w.lineB)
				p.Store(w.lineB, vb+1)
				w.Lock.Unlock(p)
				p.RecordLatency(p.Now() - t0)
				p.CountOp()
				p.Compute(o.ThinkTicks)
			}
		})
	}
	return w
}

// Validate checks post-run invariants: both cache lines saw exactly one
// increment per completed critical section (mutual exclusion held).
func (w *Workload) Validate(m *sim.Machine) (ok bool, csA, csB uint64) {
	return w.lineA.V() == w.lineB.V(), w.lineA.V(), w.lineB.V()
}

// ValidateCrashed is the crash-campaign variant: a holder killed between
// the two line stores legitimately leaves lineA ahead of lineB, by at
// most one per crash. Divergence in the other direction, or beyond the
// crash count, still means mutual exclusion was lost.
func (w *Workload) ValidateCrashed(m *sim.Machine, crashes int64) (ok bool, csA, csB uint64) {
	a, b := w.lineA.V(), w.lineB.V()
	return a >= b && a-b <= uint64(crashes), a, b
}
