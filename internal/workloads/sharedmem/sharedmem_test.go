package sharedmem

import (
	"testing"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/monitor"
	"repro/internal/sim"
)

func TestSharedMemWithBlockingLock(t *testing.T) {
	cfg := sim.Small(4)
	cfg.Seed = 1
	m := sim.New(cfg)
	w := Build(m, Options{
		Threads:  6,
		Deadline: 10_000_000,
		NewLock:  func(n string) locks.Lock { return locks.NewBlocking(m, n) },
	})
	m.Run(15_000_000)
	ok, a, b := w.Validate(m)
	if !ok {
		t.Fatalf("cache lines diverged: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("no critical sections executed")
	}
	var ops int64
	for _, th := range m.Threads() {
		ops += th.Ops
	}
	if uint64(ops) > a {
		t.Fatalf("more ops (%d) than CS increments (%d)", ops, a)
	}
}

func TestSharedMemWithFlexGuardOversubscribed(t *testing.T) {
	cfg := sim.Small(2)
	cfg.Seed = 3
	m := sim.New(cfg)
	mon := monitor.Attach(m)
	rt := core.NewRuntime(m, mon)
	w := Build(m, Options{
		Threads:  10,
		Deadline: 12_000_000,
		NewLock:  func(n string) locks.Lock { return rt.NewLock(n) },
	})
	m.Run(20_000_000)
	if ok, a, b := w.Validate(m); !ok {
		t.Fatalf("lost updates: %d vs %d", a, b)
	}
	if mon.InCSPreemptions == 0 {
		t.Fatal("oversubscribed microbenchmark should see CS preemptions")
	}
}

func TestSharedMemLatencyRecorded(t *testing.T) {
	cfg := sim.Small(2)
	cfg.Seed = 5
	m := sim.New(cfg)
	Build(m, Options{
		Threads:  2,
		Deadline: 2_000_000,
		NewLock:  func(n string) locks.Lock { return locks.NewTATAS(m, n) },
	})
	m.Run(3_000_000)
	for i, th := range m.Threads() {
		if th.LatCount == 0 {
			t.Fatalf("thread %d recorded no latencies", i)
		}
		if th.LatSum <= 0 {
			t.Fatalf("thread %d has nonpositive latency sum", i)
		}
	}
}
