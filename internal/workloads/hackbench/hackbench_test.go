package hackbench

import (
	"testing"

	"repro/internal/monitor"
	"repro/internal/sim"
)

func TestAllMessagesDelivered(t *testing.T) {
	cfg := sim.Small(4)
	cfg.Seed = 1
	m := sim.New(cfg)
	res := Run(m, Options{Groups: 2, Pairs: 3, Messages: 50})
	if res.Received != uint64(res.Messages) {
		t.Fatalf("received %d of %d messages", res.Received, res.Messages)
	}
	if res.Threads != 12 {
		t.Fatalf("threads %d, want 12", res.Threads)
	}
	if res.Runtime <= 0 {
		t.Fatal("nonpositive runtime")
	}
}

func TestOversubscribedDelivery(t *testing.T) {
	cfg := sim.Small(2)
	cfg.Seed = 3
	m := sim.New(cfg)
	res := Run(m, Options{Groups: 4, Pairs: 4, Messages: 40})
	if res.Received != uint64(res.Messages) {
		t.Fatalf("received %d of %d messages", res.Received, res.Messages)
	}
}

func TestMonitorOverheadSmall(t *testing.T) {
	// §5.4: with a hook cost configured, monitor-on runtime must exceed
	// monitor-off by only a small fraction.
	run := func(withMonitor bool) sim.Time {
		cfg := sim.Small(4)
		cfg.Seed = 7
		cfg.Costs.HookCost = 60
		m := sim.New(cfg)
		if withMonitor {
			monitor.Attach(m)
		}
		res := Run(m, Options{Groups: 3, Pairs: 4, Messages: 60})
		if res.Received != uint64(res.Messages) {
			t.Fatalf("lost messages (monitor=%v)", withMonitor)
		}
		return res.Runtime
	}
	off := run(false)
	on := run(true)
	overhead := float64(on-off) / float64(off)
	if overhead > 0.05 {
		t.Fatalf("monitor overhead %.1f%% on hackbench, want small", overhead*100)
	}
}
