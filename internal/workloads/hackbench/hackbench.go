// Package hackbench reimplements the scheduler stress test of §5.4 used
// to measure Preemption Monitor overhead: groups of sender/receiver pairs
// exchange messages through futex-backed pipes, so threads block and wake
// constantly and every block/wake drives the sched_switch tracepoint. The
// experiment compares total runtime with the monitor's hook attached
// versus detached.
package hackbench

import (
	"fmt"

	"repro/internal/sim"
)

// sem is a futex-based counting semaphore (the pipe's item/slot counts).
type sem struct {
	w *sim.Word
}

func newSem(m *sim.Machine, name string, init uint64) *sem {
	return &sem{w: m.NewWord(name, init)}
}

// acquire decrements the semaphore, blocking at zero.
func (s *sem) acquire(p *sim.Proc) {
	for {
		v := p.Load(s.w)
		if v > 0 {
			if p.CAS(s.w, v, v-1) == v {
				return
			}
			continue
		}
		p.FutexWait(s.w, 0)
	}
}

// release increments the semaphore and wakes one waiter.
func (s *sem) release(p *sim.Proc) {
	p.Add(s.w, 1)
	p.FutexWake(s.w, 1)
}

// pipe is a bounded message channel: slots/items semaphores plus a data
// cache line (the copied payload).
type pipe struct {
	slots *sem
	items *sem
	data  *sim.Word
}

// Options configures the run. The paper uses 26 groups × 25 fds (650
// threads) × 10000 messages of 512 bytes; defaults here are scaled down
// and overridable.
type Options struct {
	Groups   int // default 8
	Pairs    int // sender/receiver pairs per group, default 10
	Messages int // messages per pair, default 200
	// CopyTicks models copying one 512-byte message (default 150).
	CopyTicks sim.Time
	// PipeCap is the pipe capacity in messages (default 16).
	PipeCap int
}

// Result reports the run.
type Result struct {
	Threads  int
	Messages int
	Received uint64
	// Runtime is the virtual time at which all messages were delivered.
	Runtime sim.Time
}

// Run builds the pipes, spawns all senders and receivers on m, runs the
// machine and returns the completion time.
func Run(m *sim.Machine, o Options) Result {
	if o.Groups == 0 {
		o.Groups = 8
	}
	if o.Pairs == 0 {
		o.Pairs = 10
	}
	if o.Messages == 0 {
		o.Messages = 200
	}
	if o.CopyTicks == 0 {
		o.CopyTicks = 150
	}
	if o.PipeCap == 0 {
		o.PipeCap = 16
	}
	received := m.NewWord("hb.received", 0)
	nPipes := o.Groups * o.Pairs
	for g := 0; g < o.Groups; g++ {
		for pr := 0; pr < o.Pairs; pr++ {
			name := fmt.Sprintf("hb.g%d.p%d", g, pr)
			pp := &pipe{
				slots: newSem(m, name+".slots", uint64(o.PipeCap)),
				items: newSem(m, name+".items", 0),
				data:  m.NewWord(name+".data", 0),
			}
			msgs := o.Messages
			m.Spawn(name+".send", func(p *sim.Proc) {
				for k := 0; k < msgs; k++ {
					pp.slots.acquire(p)
					p.Compute(o.CopyTicks)
					p.Store(pp.data, uint64(k))
					pp.items.release(p)
				}
			})
			m.Spawn(name+".recv", func(p *sim.Proc) {
				for k := 0; k < msgs; k++ {
					pp.items.acquire(p)
					p.Load(pp.data)
					p.Compute(o.CopyTicks)
					pp.slots.release(p)
					p.Add(received, 1)
					p.CountOp()
				}
			})
		}
	}
	// Horizon: generous; the run quiesces when all messages are delivered.
	quiesce := m.Run(1 << 40)
	return Result{
		Threads:  2 * nPipes,
		Messages: nPipes * o.Messages,
		Received: received.V(),
		Runtime:  quiesce,
	}
}
