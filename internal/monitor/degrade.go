package monitor

import (
	"repro/internal/dist"
	"repro/internal/sim"
)

// Degradation models the failure modes a real eBPF-based monitor has and
// the paper's validation never exercises: the tracepoint keeps firing,
// but the handler's view of it decays. All fields compose; randomness is
// drawn from Rand so a degraded run stays deterministic per seed.
type Degradation struct {
	// DelaySwitches delivers every sched_switch event to the handler k
	// events late (a lagging ring-buffer consumer): NPCS updates trail
	// reality by k switches.
	DelaySwitches int
	// DropProb drops each event with this probability (ring-buffer
	// overrun discarding samples).
	DropProb float64
	// DetachAfter stops processing entirely after this many observed
	// events (program detached mid-run); 0 = never.
	DetachAfter int64
	// StuckEnabled pins the NPCS counter to StuckNPCS after every switch
	// (a wedged map entry). Stuck at nonzero makes spin-mode lockers
	// block forever on a lie; stuck at zero makes them spin through
	// preempted critical sections.
	StuckEnabled bool
	StuckNPCS    uint64
	// Rand drives DropProb; required when DropProb > 0.
	Rand *dist.Rand
}

type switchRec struct {
	prev, next *sim.Thread
}

// healthState is the self-check a production deployment would run beside
// the monitor: userspace can observe how far the handler lags the raw
// tracepoint and whether the counter still moves.
type healthState struct {
	enabled        bool
	lagThreshold   int64 // max tolerated HookSeen-Processed gap
	stuckThreshold int64 // switches with NPCS nonzero and unchanged
	lastNPCS       uint64
	stuckFor       int64
}

// Degrade activates (or with nil, clears) a degradation mode. Call
// before Run; the mode applies from the next sched_switch on.
func (mo *Monitor) Degrade(d *Degradation) { mo.deg = d }

// StaleWord returns the health flag word lock algorithms read alongside
// NPCS: nonzero means the monitor's signal can no longer be trusted and
// spin-mode decisions must not rely on it.
func (mo *Monitor) StaleWord() *sim.Word { return mo.stale }

// Stale reports whether the health check has tripped.
func (mo *Monitor) Stale() bool { return mo.stale.V() != 0 }

// EnableHealthCheck arms the monitor self-check. lag is the maximum
// tolerated gap between tracepoint firings and processed events; stuck
// is how many consecutive switches NPCS may sit nonzero and unchanged
// before being declared wedged. Zero selects the defaults (64 / 512).
// The check is off by default so healthy runs are byte-identical to
// pre-health builds.
func (mo *Monitor) EnableHealthCheck(lag, stuck int64) {
	if lag <= 0 {
		lag = 64
	}
	if stuck <= 0 {
		stuck = 512
	}
	mo.health = healthState{enabled: true, lagThreshold: lag, stuckThreshold: stuck}
}

// MarkStale raises the stale flag (idempotent). reason is one of the
// sim.Stale* codes carried on the TraceMonitorStale event.
func (mo *Monitor) MarkStale(reason int32) {
	if mo.stale.V() != 0 {
		return
	}
	mo.m.KernelStore(mo.stale, 1)
	mo.m.KernelLockEvent(sim.TraceMonitorStale, -1, -1, reason)
	mo.StaleEvents++
}

// schedSwitch is the registered tracepoint hook: it counts the raw
// firing, routes the event through the active degradation mode, then
// runs the health check.
func (mo *Monitor) schedSwitch(prev, next *sim.Thread) {
	mo.HookSeen++
	d := mo.deg
	switch {
	case d == nil:
		mo.Processed++
		mo.process(prev, next)
	case d.DetachAfter > 0 && mo.HookSeen > d.DetachAfter:
		// Detached: the tracepoint fires into the void.
	case d.DropProb > 0 && d.Rand != nil && d.Rand.Float64() < d.DropProb:
		// Overrun: this sample is lost.
	case d.DelaySwitches > 0:
		mo.delayQ = append(mo.delayQ, switchRec{prev, next})
		if len(mo.delayQ) > d.DelaySwitches {
			r := mo.delayQ[0]
			mo.delayQ = mo.delayQ[:copy(mo.delayQ, mo.delayQ[1:])]
			mo.Processed++
			mo.process(r.prev, r.next)
		}
	default:
		mo.Processed++
		mo.process(prev, next)
	}
	if d != nil && d.StuckEnabled && mo.global.V() != d.StuckNPCS {
		mo.m.KernelStore(mo.global, d.StuckNPCS)
	}
	mo.healthTick()
}

// healthTick runs the self-check after each raw tracepoint firing.
func (mo *Monitor) healthTick() {
	h := &mo.health
	if !h.enabled || mo.stale.V() != 0 {
		return
	}
	if mo.HookSeen-mo.Processed > h.lagThreshold {
		mo.MarkStale(sim.StaleEventLoss)
		return
	}
	v := mo.global.V()
	if v != 0 && v == h.lastNPCS {
		h.stuckFor++
		if h.stuckFor > h.stuckThreshold {
			mo.MarkStale(sim.StaleCounterStuck)
		}
		return
	}
	h.stuckFor = 0
	h.lastNPCS = v
}
