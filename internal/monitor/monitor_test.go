package monitor

import (
	"testing"

	"repro/internal/sim"
)

func newSmall(t *testing.T, ncpu int) *sim.Machine {
	t.Helper()
	cfg := sim.Small(ncpu)
	cfg.Seed = 1
	return sim.New(cfg)
}

// TestCSCounterDetection: a thread preempted while its cs_counter is
// positive must be counted in num_preempted_cs, and the counter must drop
// when it is rescheduled.
func TestCSCounterDetection(t *testing.T) {
	m := newSmall(t, 1)
	mo := Attach(m)
	var maxNPCS uint64
	m.RegisterSwitchHook(func(prev, next *sim.Thread) {
		if v := mo.NPCS().V(); v > maxNPCS {
			maxNPCS = v
		}
	})
	m.Spawn("holder", func(p *sim.Proc) {
		p.IncCS()
		for {
			p.Compute(1000)
		}
	})
	m.Spawn("other", func(p *sim.Proc) {
		for {
			p.Compute(1000)
		}
	})
	m.Run(2_000_000)
	if mo.InCSPreemptions == 0 {
		t.Fatal("holder was never detected as preempted in CS")
	}
	if maxNPCS == 0 {
		t.Fatal("num_preempted_cs never rose above zero")
	}
	if mo.Reschedules == 0 {
		t.Fatal("preempted holder was never detected as rescheduled")
	}
}

// TestCounterBalance: every increment must be matched by a decrement when
// the thread gets back on CPU; at any instant the counter equals the
// number of marked threads.
func TestCounterBalance(t *testing.T) {
	m := newSmall(t, 2)
	mo := Attach(m)
	bad := false
	m.RegisterSwitchHook(func(prev, next *sim.Thread) {
		var marked uint64
		for _, th := range m.Threads() {
			if th.MonitorMark {
				marked++
			}
		}
		if mo.NPCS().V() != marked {
			bad = true
		}
	})
	for i := 0; i < 6; i++ {
		m.Spawn("w", func(p *sim.Proc) {
			for {
				p.IncCS()
				p.Compute(500)
				p.DecCS()
				p.Compute(200)
			}
		})
	}
	m.Run(5_000_000)
	if bad {
		t.Fatal("num_preempted_cs diverged from the marked-thread count")
	}
	if mo.InCSPreemptions == 0 {
		t.Fatal("no in-CS preemptions in an oversubscribed run")
	}
}

// TestNotInCSNotCounted: threads that never enter a CS must never be
// counted.
func TestNotInCSNotCounted(t *testing.T) {
	m := newSmall(t, 1)
	mo := Attach(m)
	for i := 0; i < 3; i++ {
		m.Spawn("w", func(p *sim.Proc) {
			for {
				p.Compute(500)
			}
		})
	}
	m.Run(2_000_000)
	if mo.InCSPreemptions != 0 {
		t.Fatalf("counted %d in-CS preemptions with no critical sections", mo.InCSPreemptions)
	}
	if mo.NPCS().V() != 0 {
		t.Fatalf("num_preempted_cs = %d, want 0", mo.NPCS().V())
	}
}

// TestClassifierWindow: a thread with cs_counter == 0 but inside a
// classifier-recognized window must be detected, with the register check
// honored.
func TestClassifierWindow(t *testing.T) {
	const regWin sim.Region = 42
	m := newSmall(t, 1)
	mo := Attach(m)
	mo.RegisterClassifier(func(th *sim.Thread) (bool, *sim.Word) {
		return th.Region == regWin && th.Reg == 0, nil
	})
	w := m.NewWord("lock", 0)
	m.Spawn("locker", func(p *sim.Proc) {
		p.SetRegion(regWin)
		p.Xchg(w, 1) // Reg = 0: "acquired"
		for {
			p.Compute(500)
		}
	})
	m.Spawn("failer", func(p *sim.Proc) {
		p.Compute(100)
		p.SetRegion(regWin)
		p.Xchg(w, 1) // Reg = 1: "failed to acquire"
		for {
			p.Compute(500)
		}
	})
	m.Run(3_000_000)
	if mo.InCSPreemptions == 0 {
		t.Fatal("classifier window never detected")
	}
	// Only the successful locker should ever be marked.
	failer := m.Threads()[1]
	if failer.MonitorMark {
		t.Fatal("thread with failing register check was marked in-CS")
	}
}

// TestPerLockCounters: in the ablation mode, preemptions are charged to
// the classifier-provided per-lock counter, not the global one.
func TestPerLockCounters(t *testing.T) {
	m := newSmall(t, 1)
	mo := Attach(m, PerLockCounters())
	if !mo.PerLock() {
		t.Fatal("PerLock() should report true")
	}
	lockCtr := m.NewWord("lockA.npcs", 0)
	const regWin sim.Region = 9
	mo.RegisterClassifier(func(th *sim.Thread) (bool, *sim.Word) {
		return th.Region == regWin, lockCtr
	})
	var sawPerLock bool
	m.RegisterSwitchHook(func(prev, next *sim.Thread) {
		if lockCtr.V() > 0 {
			sawPerLock = true
		}
	})
	m.Spawn("locker", func(p *sim.Proc) {
		p.SetRegion(regWin)
		for {
			p.Compute(500)
		}
	})
	m.Spawn("other", func(p *sim.Proc) {
		for {
			p.Compute(500)
		}
	})
	m.Run(2_000_000)
	if !sawPerLock {
		t.Fatal("per-lock counter never incremented")
	}
	if mo.NPCS().V() != 0 {
		t.Fatalf("global counter touched in per-lock mode: %d", mo.NPCS().V())
	}
}

// TestNestedCS: cs_counter values above 1 (nesting) still count as one
// in-CS thread.
func TestNestedCS(t *testing.T) {
	m := newSmall(t, 1)
	mo := Attach(m)
	var maxNPCS uint64
	m.RegisterSwitchHook(func(prev, next *sim.Thread) {
		if v := mo.NPCS().V(); v > maxNPCS {
			maxNPCS = v
		}
	})
	m.Spawn("nested", func(p *sim.Proc) {
		p.IncCS()
		p.IncCS()
		for {
			p.Compute(500)
		}
	})
	m.Spawn("other", func(p *sim.Proc) {
		for {
			p.Compute(500)
		}
	})
	m.Run(2_000_000)
	if maxNPCS != 1 {
		t.Fatalf("nested CS counted %d times, want 1", maxNPCS)
	}
}
