// Package monitor implements the FlexGuard Preemption Monitor (paper §3.1,
// Listing 1): a handler attached to the scheduler's sched_switch tracepoint
// that detects, synchronously and without heuristics, when a thread is
// switched out while inside a critical section, and maintains the
// num_preempted_cs counter read by lock algorithms.
//
// On real hardware the monitor is an eBPF program reading the preempted
// thread's stack (preemption address vs. assembly labels), saved registers
// (the XCHG/CAS result pinned into RCX) and the user-space cs_counter TLS
// variable. In the simulator those three signals are the Thread's Region,
// Reg and CSCounter fields; the structure of the handler is otherwise
// identical to Listing 1.
package monitor

import "repro/internal/sim"

// Classifier decides whether a thread being switched out with CSCounter==0
// is nonetheless inside a lock-function window where the lock is held
// (the at_xchg/at_break/at_store label logic of Listing 1). It is
// lock-algorithm specific and registered by the lock implementation.
//
// The returned counter selects which num_preempted_cs word the preemption
// is charged to; nil selects the system-wide counter. Only the per-lock
// ablation mode (paper §3.2.2) returns non-nil counters.
type Classifier func(t *sim.Thread) (inCS bool, counter *sim.Word)

// Monitor is the Preemption Monitor instance attached to one machine.
type Monitor struct {
	m           *sim.Machine
	global      *sim.Word
	classifiers []Classifier
	rechecks    []Recheck
	pending     []*sim.Thread // preempted threads eligible for re-checking
	perLock     bool
	chargedTo   map[*sim.Thread]*sim.Word // which counter a mark was charged to

	stale  *sim.Word    // health flag read by lock algorithms (0 = fresh)
	deg    *Degradation // active fault-injection mode, nil when healthy
	delayQ []switchRec  // withheld events when deg.DelaySwitches > 0
	health healthState

	// InCSPreemptions counts critical-section preemptions detected over
	// the run (diagnostics).
	InCSPreemptions int64
	// Reschedules counts preempted-in-CS threads switched back in.
	Reschedules int64
	// SpinToBlockSwitches counts policy flips into blocking mode (a
	// num_preempted_cs counter crossing 0 -> 1); BlockToSpinSwitches the
	// flips back (1 -> 0). In per-lock ablation mode each lock's counter
	// crossing counts separately.
	SpinToBlockSwitches int64
	BlockToSpinSwitches int64

	// HookSeen counts raw sched_switch tracepoint firings; Processed
	// counts the events the handler actually consumed. They diverge only
	// under degradation — the gap is what the health check watches.
	HookSeen  int64
	Processed int64
	// StaleEvents counts health-check trips (0 or 1; the flag latches).
	StaleEvents int64
}

// Option configures Attach.
type Option func(*Monitor)

// PerLockCounters enables the §3.2.2 ablation: preemptions are charged to
// the counter returned by the classifier (one per lock) instead of the
// system-wide counter. The paper shows this performs worse; the ablation
// benchmark reproduces that claim.
func PerLockCounters() Option {
	return func(mo *Monitor) { mo.perLock = true }
}

// Attach installs the Preemption Monitor on m's sched_switch tracepoint
// and returns it. Attach before spawning threads.
func Attach(m *sim.Machine, opts ...Option) *Monitor {
	mo := &Monitor{
		m:         m,
		global:    m.NewWord("num_preempted_cs", 0),
		stale:     m.NewWord("monitor_stale", 0),
		chargedTo: make(map[*sim.Thread]*sim.Word),
	}
	for _, o := range opts {
		o(mo)
	}
	m.RegisterSwitchHook(mo.schedSwitch)
	return mo
}

// NPCS returns the system-wide num_preempted_cs word. Lock algorithms read
// it (it is an eBPF global variable shared with user space); only the
// monitor writes it.
func (mo *Monitor) NPCS() *sim.Word { return mo.global }

// PerLock reports whether the per-lock ablation mode is active.
func (mo *Monitor) PerLock() bool { return mo.perLock }

// RegisterClassifier adds a lock-family classifier consulted for threads
// whose cs_counter is zero at switch-out time.
func (mo *Monitor) RegisterClassifier(c Classifier) {
	mo.classifiers = append(mo.classifiers, c)
}

// Recheck handles next-waiter preemptions that materialize after the
// switch (§3.2.2): a thread preempted while waiting in the MCS queue may
// be handed the MCS lock while off-CPU — it is then a preempted MCS
// holder, stalling the queue, but no sched_switch fires for it. Eligible
// marks a just-preempted thread for re-examination; Check re-reads its
// user-space queue state (eBPF can read user memory) on subsequent
// context switches and reports when it has become an in-CS thread.
type Recheck struct {
	Eligible func(t *sim.Thread) bool
	Check    func(t *sim.Thread) (inCS bool, counter *sim.Word)
}

// RegisterRecheck adds a lock-family recheck rule.
func (mo *Monitor) RegisterRecheck(r Recheck) {
	mo.rechecks = append(mo.rechecks, r)
}

// process is the real tracepoint handler body — the structure mirrors
// Listing 1, plus the pending-thread re-examination for next-waiter
// preemptions. schedSwitch (degrade.go) decides whether/when each event
// reaches it.
func (mo *Monitor) process(prev, next *sim.Thread) {
	// If next was previously preempted in a critical section, it is now
	// back on CPU: clear the mark and decrement the counter.
	if next != nil && next.MonitorMark {
		next.MonitorMark = false
		nv := mo.m.KernelAdd(mo.counterFor(next), -1)
		mo.m.KernelLockEvent(sim.TraceNPCSDown, -1, int32(next.ID()), int32(nv))
		if nv == 0 {
			mo.BlockToSpinSwitches++
			mo.m.KernelLockEvent(sim.TracePolicySwitch, -1, int32(next.ID()), 0)
		}
		mo.Reschedules++
	}
	if next != nil {
		mo.unpend(next)
	}
	mo.recheckPending()
	if prev == nil || prev.State() == sim.StateDone {
		return
	}
	inCS := prev.CSCounter > 0 // values > 1 indicate nesting
	var counter *sim.Word
	if !inCS {
		// cs_counter == 0: consult the label windows inside the lock
		// functions (preemption address + register checks).
		for _, c := range mo.classifiers {
			if in, w := c(prev); in {
				inCS = true
				counter = w
				break
			}
		}
	} else if mo.perLock {
		counter = prev.MonitorHint
	}
	if inCS {
		mo.mark(prev, counter)
		return
	}
	// Not currently in CS: it may still become the MCS holder while
	// off-CPU; remember it for re-examination if a lock family asks.
	for _, r := range mo.rechecks {
		if r.Eligible(prev) {
			mo.pending = append(mo.pending, prev)
			return
		}
	}
}

// mark flags a thread as a preempted critical section.
func (mo *Monitor) mark(t *sim.Thread, counter *sim.Word) {
	t.MonitorMark = true
	w := mo.resolve(counter)
	mo.chargedTo[t] = w
	nv := mo.m.KernelAdd(w, +1)
	mo.m.KernelLockEvent(sim.TraceNPCSUp, -1, int32(t.ID()), int32(nv))
	if nv == 1 {
		mo.SpinToBlockSwitches++
		mo.m.KernelLockEvent(sim.TracePolicySwitch, -1, int32(t.ID()), 1)
	}
	mo.InCSPreemptions++
}

// recheckPending re-examines preempted queue waiters: one of them may
// have been handed the MCS lock while off-CPU.
func (mo *Monitor) recheckPending() {
	if len(mo.pending) == 0 {
		return
	}
	kept := mo.pending[:0]
	for _, t := range mo.pending {
		if t.State() == sim.StateDone || t.MonitorMark {
			continue
		}
		promoted := false
		for _, r := range mo.rechecks {
			if in, w := r.Check(t); in {
				mo.mark(t, w)
				promoted = true
				break
			}
		}
		if !promoted {
			kept = append(kept, t)
		}
	}
	mo.pending = kept
}

// unpend drops a rescheduled thread from the re-examination list.
func (mo *Monitor) unpend(t *sim.Thread) {
	for i, p := range mo.pending {
		if p == t {
			mo.pending = append(mo.pending[:i], mo.pending[i+1:]...)
			return
		}
	}
}

// counterFor returns the counter a thread's mark was charged to.
func (mo *Monitor) counterFor(t *sim.Thread) *sim.Word {
	if w, ok := mo.chargedTo[t]; ok {
		delete(mo.chargedTo, t)
		return w
	}
	return mo.global
}

// resolve maps a classifier-provided counter to the effective one.
func (mo *Monitor) resolve(counter *sim.Word) *sim.Word {
	if mo.perLock && counter != nil {
		return counter
	}
	return mo.global
}
