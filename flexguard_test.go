package flexguard

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMutexMutualExclusion: plain counter race under the native mutex.
func TestMutexMutualExclusion(t *testing.T) {
	mon := StartMonitor(MonitorConfig{})
	defer mon.Stop()
	m := NewMutex(mon)
	var counter int
	var wg sync.WaitGroup
	const goroutines, iters = 8, 2000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("lost updates: %d, want %d", counter, goroutines*iters)
	}
}

// TestMutexBlockingMode: with the monitor forced oversubscribed, waiters
// must block (not burn CPU) and the lock must stay correct and live.
func TestMutexBlockingMode(t *testing.T) {
	mon := StartMonitor(MonitorConfig{Interval: time.Hour}) // inert sampler
	defer mon.Stop()
	mon.force(true)
	m := NewMutex(mon)
	var counter int
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("blocking mode deadlocked")
	}
	if counter != 8*500 {
		t.Fatalf("lost updates in blocking mode: %d", counter)
	}
}

// TestMutexModeTransitions: flipping the monitor back and forth while the
// lock is contended must not lose mutual exclusion or wakeups.
func TestMutexModeTransitions(t *testing.T) {
	mon := StartMonitor(MonitorConfig{Interval: time.Hour})
	defer mon.Stop()
	m := NewMutex(mon)
	var counter int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		mon.force(i%2 == 0)
		time.Sleep(2 * time.Millisecond)
	}
	mon.force(false)
	close(stop)
	wg.Wait()
	if counter == 0 {
		t.Fatal("no progress through mode transitions")
	}
}

// TestMutexTryLock: semantics of the non-blocking path.
func TestMutexTryLock(t *testing.T) {
	m := NewMutex(nil)
	if !m.TryLock() {
		t.Fatal("TryLock on a free mutex failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on a held mutex succeeded")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	m.Unlock()
}

// TestMutexUnlockPanics: unlocking an unlocked mutex is a programming
// error.
func TestMutexUnlockPanics(t *testing.T) {
	m := NewMutex(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked mutex should panic")
		}
	}()
	m.Unlock()
}

// TestMonitorDetectsOversubscription: flooding the scheduler with busy
// goroutines should eventually trip the monitor. Timing-sensitive, so the
// test only requires the trip under heavy, sustained load and skips on
// uniprocessors.
func TestMonitorDetectsOversubscription(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >1 P")
	}
	mon := StartMonitor(MonitorConfig{Interval: time.Millisecond, Threshold: 2 * time.Millisecond})
	defer mon.Stop()
	stop := make(chan struct{})
	var spun atomic.Int64
	for g := 0; g < runtime.GOMAXPROCS(0)*8; g++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
					for i := 0; i < 1_000_000; i++ {
						spun.Add(1)
					}
				}
			}
		}()
	}
	deadline := time.After(10 * time.Second)
	for {
		if mon.Oversubscribed() {
			break
		}
		select {
		case <-deadline:
			close(stop)
			t.Skip("scheduler pressure not observable in this environment")
		case <-time.After(10 * time.Millisecond):
		}
	}
	close(stop)
	if mon.Trips() == 0 {
		t.Fatal("monitor tripped but recorded no transitions")
	}
}

// TestMonitorStopIdempotent: Stop twice is fine.
func TestMonitorStopIdempotent(t *testing.T) {
	mon := StartMonitor(MonitorConfig{})
	mon.Stop()
	mon.Stop()
}

// TestDefaultMonitorSingleton: the shared monitor is one instance.
func TestDefaultMonitorSingleton(t *testing.T) {
	if DefaultMonitor() != DefaultMonitor() {
		t.Fatal("DefaultMonitor must return one instance")
	}
}

// TestSimulationFacade: the public simulation API end to end.
func TestSimulationFacade(t *testing.T) {
	s, err := NewSimulation(SimConfig{CPUs: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	l := s.NewLock("L")
	bl, err := s.NewBaselineLock("mcs", "M")
	if err != nil {
		t.Fatal(err)
	}
	ctr := s.M.NewWord("ctr", 0)
	var done uint64
	for i := 0; i < 6; i++ {
		s.Spawn("w", func(p *Proc) {
			for p.Now() < 4_000_000 {
				l.Lock(p)
				bl.Lock(p)
				v := p.Load(ctr)
				p.Compute(50)
				p.Store(ctr, v+1)
				bl.Unlock(p)
				l.Unlock(p)
				done++
			}
		})
	}
	s.Run(6_000_000)
	if ctr.V() != done || done == 0 {
		t.Fatalf("facade run broken: ctr=%d done=%d", ctr.V(), done)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	if _, err := s.NewBaselineLock("bogus", "x"); err == nil {
		t.Fatal("bogus baseline name should error")
	}
	if len(Algorithms()) < 10 {
		t.Fatalf("algorithm list too short: %v", Algorithms())
	}
}

// TestSimulationProfiles: named profiles resolve.
func TestSimulationProfiles(t *testing.T) {
	s, err := NewSimulation(SimConfig{Profile: "intel"})
	if err != nil {
		t.Fatal(err)
	}
	if s.M.Config().NumCPUs != 104 {
		t.Fatalf("intel profile has %d contexts, want 104", s.M.Config().NumCPUs)
	}
	if _, err := NewSimulation(SimConfig{Profile: "vax"}); err == nil {
		t.Fatal("unknown profile should error")
	}
}
