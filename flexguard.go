// Package flexguard is a Go reproduction of "FlexGuard: Fast Mutual
// Exclusion Independent of Subscription" (SOSP 2025).
//
// The faithful reproduction lives on a deterministic multicore simulator
// (internal/sim) where thread preemption, the sched_switch tracepoint, the
// futex and the cache hierarchy are first-class: internal/monitor is the
// Preemption Monitor (the paper's eBPF program), internal/core is the
// FlexGuard lock algorithm, internal/locks holds the ten baseline locks
// the paper compares against, and internal/harness + cmd/flexbench
// regenerate every figure. This package is the public entry point:
//
//   - NewSimulation builds a simulated machine with the Preemption Monitor
//     attached and hands out FlexGuard locks and baseline locks for
//     experiments (see examples/quickstart).
//   - Mutex is a *native* Go lock implementing the FlexGuard policy for
//     real goroutine workloads: it busy-waits while the runtime looks
//     healthy and switches every waiter to blocking when the monitor
//     detects scheduler pressure. Go hides kernel-thread preemption, so
//     the native monitor is necessarily a sampling approximation — see
//     NativeMonitor — while the simulator carries the exact algorithm.
package flexguard

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/monitor"
	"repro/internal/sim"
)

// Re-exported simulator types, so example programs and downstream users
// need only this package for common tasks.
type (
	// Machine is the simulated multicore machine.
	Machine = sim.Machine
	// Proc is a simulated thread's execution handle.
	Proc = sim.Proc
	// Time is virtual time in ticks (~1 cycle at 2.2 GHz).
	Time = sim.Time
	// Lock is the mutual-exclusion interface all algorithms implement.
	Lock = locks.Lock
	// SimLock is a FlexGuard lock instance on the simulator.
	SimLock = core.FlexGuard
	// Monitor is the Preemption Monitor attached to a machine.
	Monitor = monitor.Monitor
)

// Simulation bundles a machine, its Preemption Monitor and the FlexGuard
// runtime.
type Simulation struct {
	M   *sim.Machine
	Mon *monitor.Monitor
	RT  *core.Runtime

	shared *locks.Shared
}

// SimConfig configures NewSimulation.
type SimConfig struct {
	// CPUs is the number of hardware contexts (default 8).
	CPUs int
	// Seed makes the run reproducible (default 1).
	Seed uint64
	// Profile selects a full machine profile by name ("intel", "amd");
	// when set, CPUs is ignored.
	Profile string
	// RecordRunnable enables the runnable-thread timeline.
	RecordRunnable bool
}

// NewSimulation builds a simulated machine with the FlexGuard Preemption
// Monitor attached.
func NewSimulation(c SimConfig) (*Simulation, error) {
	var cfg sim.Config
	if c.Profile != "" {
		var err error
		cfg, err = harness.MachineConfig(c.Profile)
		if err != nil {
			return nil, err
		}
	} else {
		n := c.CPUs
		if n == 0 {
			n = 8
		}
		cfg = sim.Intel()
		cfg.NumCPUs = n
	}
	if c.Seed != 0 {
		cfg.Seed = c.Seed
	} else {
		cfg.Seed = 1
	}
	cfg.RecordRunnable = c.RecordRunnable
	m := sim.New(cfg)
	mon := monitor.Attach(m)
	return &Simulation{
		M:      m,
		Mon:    mon,
		RT:     core.NewRuntime(m, mon),
		shared: locks.NewShared(m),
	}, nil
}

// NewLock creates a FlexGuard lock on the simulation.
func (s *Simulation) NewLock(name string) *core.FlexGuard {
	return s.RT.NewLock(name)
}

// NewBaselineLock creates one of the paper's baseline locks by registry
// name ("blocking", "posix", "mcs", "mcstp", "shuffle", "malthusian",
// "uscl", "tas", "tatas", "ticket", "clh", "backoff", "spin-ext").
func (s *Simulation) NewBaselineLock(alg, name string) (locks.Lock, error) {
	info, err := locks.Lookup(alg)
	if err != nil {
		return nil, err
	}
	return info.New(s.shared, name), nil
}

// Spawn adds a simulated thread.
func (s *Simulation) Spawn(name string, body func(p *sim.Proc)) *sim.Thread {
	return s.M.Spawn(name, body)
}

// Run processes the simulation until the given virtual time and returns
// the quiesce time.
func (s *Simulation) Run(until sim.Time) sim.Time {
	return s.M.Run(until)
}

// Algorithms returns the names of the lock algorithms evaluated in the
// paper, in figure order.
func Algorithms() []string {
	return append([]string(nil), harness.Algorithms...)
}

// Version identifies this reproduction.
const Version = "flexguard-repro 1.0 (SOSP 2025 reproduction)"

// String implements fmt.Stringer for Simulation.
func (s *Simulation) String() string {
	return fmt.Sprintf("flexguard simulation: %d contexts, %d threads",
		s.M.Config().NumCPUs, len(s.M.Threads()))
}
