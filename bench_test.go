package flexguard

// Benchmark harness: one testing.B benchmark per paper table/figure (see
// DESIGN.md's experiment index). Each benchmark runs the corresponding
// experiment at a reduced scale and reports paper-relevant custom metrics
// (virtual ops/s, mean CS latency in µs, fairness) alongside ns/op, so
// `go test -bench=. -benchmem` regenerates the full set of results.
// cmd/flexbench runs the same experiments at arbitrary scale.

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/workloads/hackbench"
	"repro/internal/workloads/kvstore"
)

// benchCfg returns the scaled-down Intel profile used by the benchmarks.
func benchCfg(b *testing.B) sim.Config {
	b.Helper()
	cfg, err := harness.MachineConfig("intel")
	if err != nil {
		b.Fatal(err)
	}
	return harness.ScaleConfig(cfg, 0.125) // 13 contexts
}

const benchDuration = sim.Time(8_000_000)

// benchAlgs is the algorithm subset exercised per-benchmark (the full
// ten-algorithm sweeps live in cmd/flexbench).
var benchAlgs = []string{"blocking", "mcs", "flexguard"}

// reportResult publishes a run's metrics on the benchmark.
func reportResult(b *testing.B, prefix string, r harness.Result) {
	b.Helper()
	b.ReportMetric(r.OpsPerSec, prefix+"_vops/s")
	b.ReportMetric(r.MeanLatUS, prefix+"_cs_us")
	b.ReportMetric(r.Fairness, prefix+"_fairness")
}

// runLockSweep benchmarks one workload runner across the algorithms at
// the given subscription ratio.
func runLockSweep(b *testing.B, ratio float64, runner func(harness.RunCfg) (harness.Result, error)) {
	cfg := benchCfg(b)
	threads := int(float64(cfg.NumCPUs) * ratio)
	if threads < 1 {
		threads = 1
	}
	for _, alg := range benchAlgs {
		alg := alg
		b.Run(alg, func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				r, err := runner(harness.RunCfg{
					Config: cfg, Alg: alg, Threads: threads,
					Duration: benchDuration, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			reportResult(b, alg, last)
		})
	}
}

// BenchmarkFig1SharedMemIntel / BenchmarkFig2: the shared-memory-access
// microbenchmark (Figures 1 and 2a–d) at full subscription.
func BenchmarkFig1SharedMemIntel(b *testing.B) {
	runLockSweep(b, 1.0, func(c harness.RunCfg) (harness.Result, error) {
		return harness.RunSharedMem(c, 100)
	})
}

// BenchmarkFig2SharedMemOversubscribed: the same microbenchmark at 2×
// subscription — the collapse region of Figures 1/2.
func BenchmarkFig2SharedMemOversubscribed(b *testing.B) {
	runLockSweep(b, 2.0, func(c harness.RunCfg) (harness.Result, error) {
		return harness.RunSharedMem(c, 100)
	})
}

// BenchmarkFig3HashTable: Figures 3a–d.
func BenchmarkFig3HashTable(b *testing.B) {
	runLockSweep(b, 1.5, harness.RunHashTable)
}

// BenchmarkFig3DBIndex: Figures 3e–h.
func BenchmarkFig3DBIndex(b *testing.B) {
	runLockSweep(b, 1.5, harness.RunDBIndex)
}

// BenchmarkFig3Dedup: Figures 3i–l.
func BenchmarkFig3Dedup(b *testing.B) {
	runLockSweep(b, 1.5, harness.RunDedup)
}

// BenchmarkFig3Raytrace: Figures 3m–p.
func BenchmarkFig3Raytrace(b *testing.B) {
	runLockSweep(b, 1.5, harness.RunRaytrace)
}

// BenchmarkFig3Streamcluster: Figures 3q–t.
func BenchmarkFig3Streamcluster(b *testing.B) {
	runLockSweep(b, 1.5, harness.RunStreamcluster)
}

// BenchmarkFig4ReadRandom: Figures 4a–d (LevelDB readrandom).
func BenchmarkFig4ReadRandom(b *testing.B) {
	runLockSweep(b, 1.5, func(c harness.RunCfg) (harness.Result, error) {
		return harness.RunKV(c, kvstore.ReadRandom)
	})
}

// BenchmarkFig4FillRandom: Figures 4e–h (LevelDB fillrandom).
func BenchmarkFig4FillRandom(b *testing.B) {
	runLockSweep(b, 1.5, func(c harness.RunCfg) (harness.Result, error) {
		return harness.RunKV(c, kvstore.FillRandom)
	})
}

// BenchmarkFig5aRunnable: Figure 5a — the runnable-thread timeline at
// 1.35× subscription; reports the time-weighted mean runnable count.
func BenchmarkFig5aRunnable(b *testing.B) {
	cfg := benchCfg(b)
	threads := cfg.NumCPUs * 135 / 100
	for _, alg := range benchAlgs {
		alg := alg
		b.Run(alg, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				e, _, err := harness.RunSharedMemEnv(harness.RunCfg{
					Config: cfg, Alg: alg, Threads: threads,
					Duration: benchDuration, Seed: uint64(i + 1), RecordRunnable: true,
				}, 100)
				if err != nil {
					b.Fatal(err)
				}
				mean = e.M.RunnableTimeline().TimeWeightedMean(benchDuration/10, benchDuration)
			}
			b.ReportMetric(mean, "runnable_mean")
		})
	}
}

// BenchmarkFig5bFairness: Figure 5b — the Dice fairness factor at 2×
// subscription.
func BenchmarkFig5bFairness(b *testing.B) {
	runLockSweep(b, 2.0, func(c harness.RunCfg) (harness.Result, error) {
		return harness.RunSharedMem(c, 1_000)
	})
}

// BenchmarkFig5cSpin: Figure 5c — spin-loop iterations per algorithm.
func BenchmarkFig5cSpin(b *testing.B) {
	cfg := benchCfg(b)
	for _, alg := range []string{"blocking", "posix", "mcs", "flexguard"} {
		alg := alg
		b.Run(alg, func(b *testing.B) {
			var spins int64
			for i := 0; i < b.N; i++ {
				r, err := harness.RunSharedMem(harness.RunCfg{
					Config: cfg, Alg: alg, Threads: cfg.NumCPUs * 2,
					Duration: benchDuration, Seed: uint64(i + 1),
				}, 100)
				if err != nil {
					b.Fatal(err)
				}
				spins = r.SpinIters
			}
			b.ReportMetric(float64(spins), "spin_iters")
		})
	}
}

// BenchmarkOverheadHackbench: §5.4 — Preemption Monitor overhead.
func BenchmarkOverheadHackbench(b *testing.B) {
	cfg := benchCfg(b)
	var off, on sim.Time
	for i := 0; i < b.N; i++ {
		var err error
		off, on, err = harness.RunHackbench(cfg, uint64(i+7), hackbench.Options{
			Groups: 3, Pairs: 4, Messages: 80,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(off), "ticks_monitor_off")
	b.ReportMetric(float64(on), "ticks_monitor_on")
	b.ReportMetric(float64(on-off)/float64(off)*100, "overhead_%")
}

// BenchmarkAblationPerLockCounter: §3.2.2 — system-wide vs per-lock
// num_preempted_cs.
func BenchmarkAblationPerLockCounter(b *testing.B) {
	cfg := benchCfg(b)
	for _, perLock := range []bool{false, true} {
		name := "system-wide"
		if perLock {
			name = "per-lock"
		}
		perLock := perLock
		b.Run(name, func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				r, err := harness.RunHashTable(harness.RunCfg{
					Config: cfg, Alg: "flexguard", Threads: cfg.NumCPUs * 2,
					Duration: benchDuration, Seed: uint64(i + 1), PerLock: perLock,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.OpsPerSec, "vops/s")
		})
	}
}

// BenchmarkAblationMCSExit: §3.2.1 — the reverted blocking-aware mcs_exit.
func BenchmarkAblationMCSExit(b *testing.B) {
	cfg := benchCfg(b)
	for _, blocking := range []bool{false, true} {
		name := "spin-exit"
		if blocking {
			name = "blocking-exit"
		}
		blocking := blocking
		b.Run(name, func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				r, err := harness.RunSharedMem(harness.RunCfg{
					Config: cfg, Alg: "flexguard", Threads: cfg.NumCPUs * 2,
					Duration: benchDuration, Seed: uint64(i + 1), BlockingMCSExit: blocking,
				}, 100)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.MeanLatUS, "cs_us")
		})
	}
}

// BenchmarkNativeMutex: the native Go mutex vs sync-style usage, healthy
// and (forced) oversubscribed modes.
func BenchmarkNativeMutex(b *testing.B) {
	for _, over := range []bool{false, true} {
		name := "healthy"
		if over {
			name = "oversubscribed"
		}
		over := over
		b.Run(name, func(b *testing.B) {
			mon := StartMonitor(MonitorConfig{Interval: 1 << 62})
			defer mon.Stop()
			mon.force(over)
			m := NewMutex(mon)
			counter := 0
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					m.Lock()
					counter++
					m.Unlock()
				}
			})
			if counter != b.N {
				b.Fatalf("lost updates: %d vs %d", counter, b.N)
			}
		})
	}
}

// BenchmarkSimulatorEventRate measures raw simulator throughput
// (events/sec of wall time) — the substrate cost of every experiment.
func BenchmarkSimulatorEventRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := NewSimulation(SimConfig{CPUs: 8, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		l := s.NewLock("L")
		w := s.M.NewWord("ctr", 0)
		for k := 0; k < 16; k++ {
			s.Spawn("w", func(p *Proc) {
				for p.Now() < 2_000_000 {
					l.Lock(p)
					v := p.Load(w)
					p.Store(w, v+1)
					l.Unlock(p)
					p.Compute(100)
				}
			})
		}
		s.Run(3_000_000)
	}
}
