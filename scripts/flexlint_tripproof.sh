#!/usr/bin/env bash
# Trip proof for the flexlint suite: CI must not just see flexlint pass
# on a clean tree, it must see each pass actually catch an injected
# violation. For every interprocedural pass this script drops one
# minimal bad file into the module, requires flexlint to exit nonzero
# naming that pass, removes the injection, and finally requires the
# tree to be clean again. A silently broken pass (wrong root set, edge
# kind regression, suppressed reporting) fails here, not in review.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=internal/locks/ztripproof_injected.go
out=$(mktemp)
trap 'rm -f "$tmp" "$out"' EXIT

go build -o /tmp/flexlint ./cmd/flexlint

echo "== clean tree must pass =="
/tmp/flexlint ./...

trip() {
  local pass=$1
  cat >"$tmp"
  if /tmp/flexlint ./... >"$out" 2>&1; then
    echo "injected $pass violation did not trip flexlint" >&2
    exit 1
  fi
  if ! grep -q "\[$pass\]" "$out"; then
    echo "flexlint tripped, but not on $pass:" >&2
    cat "$out" >&2
    exit 1
  fi
  rm -f "$tmp"
  echo "== $pass trips =="
}

# hotalloc: an allocation inside a structurally-matched Lock method.
trip hotalloc <<'GO'
package locks

import "repro/internal/sim"

type ztripHot struct{ w *sim.Word }

func (l *ztripHot) Lock(p *sim.Proc) {
	buf := make([]uint64, 4)
	p.Store(l.w, buf[0]+1)
}

func (l *ztripHot) Unlock(p *sim.Proc) { p.Store(l.w, 0) }
GO

# costcoverage: a free Word.V peek on a spawned simulated thread,
# outside any spin condition.
trip costcoverage <<'GO'
package locks

import "repro/internal/sim"

func ztripCost(m *sim.Machine, w *sim.Word) {
	m.Spawn("ztrip", func(p *sim.Proc) {
		for w.V() == 0 {
			p.Yield()
		}
	})
}
GO

# traceprotocol: a Lock path that emits two acquire-class events.
trip traceprotocol <<'GO'
package locks

import "repro/internal/sim"

type ztripProto struct {
	w   *sim.Word
	lid int32
}

func (l *ztripProto) Lock(p *sim.Proc) {
	p.Store(l.w, 1)
	p.LockEvent(sim.TraceAcquire, l.lid)
	p.LockEvent(sim.TraceAcquire, l.lid)
}

func (l *ztripProto) Unlock(p *sim.Proc) {
	p.Store(l.w, 0)
	p.LockEvent(sim.TraceRelease, l.lid)
}
GO

# lockpair, annotation-free: an interprocedural early-return leak.
trip lockpair <<'GO'
package locks

import "repro/internal/sim"

func ztripPair(l *MCS, p *sim.Proc, skip bool) {
	l.Lock(p)
	if skip {
		return
	}
	l.Unlock(p)
}
GO

echo "== clean tree must pass again =="
/tmp/flexlint ./...
echo "trip proof ok"
