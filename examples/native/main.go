// Native: use the FlexGuard policy in a real Go program. A shared counter
// is protected by flexguard.Mutex while the program deliberately floods
// the scheduler with busy goroutines; the NativeMonitor detects the
// pressure and the mutex's waiters switch from spinning to blocking.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	mon := flexguard.StartMonitor(flexguard.MonitorConfig{
		Interval:  time.Millisecond,
		Threshold: 2 * time.Millisecond,
	})
	defer mon.Stop()
	mu := flexguard.NewMutex(mon)

	var counter int64
	var wg sync.WaitGroup
	stopNoise := make(chan struct{})

	// Phase 1: healthy — locked increments with no background noise.
	phase := func(label string, workers, iters int) {
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					mu.Lock()
					counter++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		fmt.Printf("%-22s %8d ops in %8v  (monitor oversubscribed: %v)\n",
			label, workers*iters, time.Since(start).Round(time.Millisecond),
			mon.Oversubscribed())
	}

	phase("healthy / spinning:", 4, 50_000)

	// Phase 2: flood the scheduler with CPU-bound goroutines (the
	// "concurrent busy-waiting workload" of §5.2).
	var noise atomic.Int64
	for g := 0; g < runtime.GOMAXPROCS(0)*8; g++ {
		go func() {
			for {
				select {
				case <-stopNoise:
					return
				default:
					for i := 0; i < 1_000_000; i++ {
						noise.Add(1)
					}
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the monitor observe the load
	phase("oversubscribed:", 4, 50_000)
	close(stopNoise)

	fmt.Printf("\nfinal counter: %d (exact: mutual exclusion held)\n", counter)
	fmt.Printf("monitor transitions to blocking mode: %d\n", mon.Trips())
	fmt.Println("note: Go cannot observe kernel preemptions synchronously, so the")
	fmt.Println("native monitor samples scheduling delay; the simulator (see the")
	fmt.Println("other examples) carries the paper's exact eBPF-driven algorithm.")
}
