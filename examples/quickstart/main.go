// Quickstart: build a simulated 8-context machine, protect a shared
// counter with a FlexGuard lock, oversubscribe it with 16 threads, and
// watch the Preemption Monitor switch the lock between busy-waiting and
// blocking.
package main

import (
	"fmt"

	"repro"
)

func main() {
	sim, err := flexguard.NewSimulation(flexguard.SimConfig{CPUs: 8, Seed: 42})
	if err != nil {
		panic(err)
	}
	lock := sim.NewLock("counter-lock")
	counter := sim.M.NewWord("counter", 0)

	const threads = 16 // 2× the hardware contexts: oversubscribed
	const horizon = flexguard.Time(20_000_000)

	for i := 0; i < threads; i++ {
		sim.Spawn("worker", func(p *flexguard.Proc) {
			for p.Now() < horizon*4/5 {
				lock.Lock(p)
				v := p.Load(counter) // non-atomic read-modify-write:
				p.Compute(120)       // any mutual-exclusion bug loses updates
				p.Store(counter, v+1)
				lock.Unlock(p)
				p.CountOp()
				p.Compute(80)
			}
		})
	}
	sim.Run(horizon)

	var ops int64
	for _, th := range sim.M.Threads() {
		ops += th.Ops
	}
	fmt.Printf("%s\n", sim)
	fmt.Printf("counter = %d, completed critical sections = %d (must match)\n",
		counter.V(), ops)
	fmt.Printf("critical-section preemptions detected by the monitor: %d\n",
		sim.Mon.InCSPreemptions)
	fmt.Printf("monitor reschedule events (preempted holders back on CPU): %d\n",
		sim.Mon.Reschedules)
	if counter.V() != uint64(ops) {
		panic("mutual exclusion violated!")
	}
	fmt.Println("mutual exclusion held across all mode transitions ✓")
}
