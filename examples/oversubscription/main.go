// Oversubscription: the paper's headline experiment in miniature. The
// same critical-section workload runs with MCS, the pure blocking lock
// and FlexGuard at 0.5×, 1× and 2× hardware subscription; MCS collapses
// past 1×, the blocking lock never collapses but is slower before 1×, and
// FlexGuard tracks the best of both (Figures 1 and 2).
package main

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	base, err := harness.MachineConfig("intel")
	if err != nil {
		panic(err)
	}
	cfg := harness.ScaleConfig(base, 0.25) // 26 contexts
	fmt.Printf("machine: %d hardware contexts (Intel profile, scaled)\n\n", cfg.NumCPUs)
	fmt.Printf("%-12s %14s %14s %14s\n", "lock", "0.5x (µs)", "1x (µs)", "2x (µs)")

	for _, alg := range []string{"mcs", "blocking", "flexguard"} {
		fmt.Printf("%-12s", alg)
		for _, ratio := range []float64{0.5, 1.0, 2.0} {
			threads := int(float64(cfg.NumCPUs) * ratio)
			r, err := harness.RunSharedMem(harness.RunCfg{
				Config:   cfg,
				Alg:      alg,
				Threads:  threads,
				Duration: sim.Time(25_000_000),
				Seed:     7,
			}, 100)
			if err != nil {
				panic(err)
			}
			fmt.Printf(" %14.2f", r.MeanLatUS)
		}
		fmt.Println()
	}
	fmt.Println("\nreading: µs to acquire + run + release one critical section (mean).")
	fmt.Println("MCS's 2x column shows the spinlock collapse; FlexGuard's does not.")
}
