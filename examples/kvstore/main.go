// KVStore: the LevelDB-style experiment (Figure 4) as an example — a mini
// LSM store (skiplist memtable + WAL + global database mutex) runs the
// readrandom and fillrandom benchmarks with POSIX and FlexGuard at 1.5×
// subscription, where the global DB lock is exactly the contention point
// the paper identifies.
package main

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/workloads/kvstore"
)

func main() {
	base, err := harness.MachineConfig("intel")
	if err != nil {
		panic(err)
	}
	cfg := harness.ScaleConfig(base, 0.25)
	threads := cfg.NumCPUs * 3 / 2 // oversubscribed
	fmt.Printf("mini-LevelDB: %d threads on %d contexts (1.5× subscription)\n\n",
		threads, cfg.NumCPUs)
	fmt.Printf("%-12s %18s %18s\n", "lock", "readrandom (Kops/s)", "fillrandom (Kops/s)")

	for _, alg := range []string{"posix", "flexguard"} {
		fmt.Printf("%-12s", alg)
		for _, kind := range []kvstore.WorkloadKind{kvstore.ReadRandom, kvstore.FillRandom} {
			r, err := harness.RunKV(harness.RunCfg{
				Config:   cfg,
				Alg:      alg,
				Threads:  threads,
				Duration: sim.Time(25_000_000),
				Seed:     13,
			}, kind)
			if err != nil {
				panic(err)
			}
			fmt.Printf(" %18.1f", r.OpsPerSec/1e3)
		}
		fmt.Println()
	}
	fmt.Println("\nreadrandom holds the DB mutex briefly per op; fillrandom holds it")
	fmt.Println("across the WAL append and memtable insert — both contend on the one")
	fmt.Println("global lock, LevelDB's behaviour in the paper's Figure 4.")
}
