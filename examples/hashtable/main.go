// Hashtable: the paper's multi-lock microbenchmark (Figure 3a–d) as an
// example — a 100-bucket hash table with one lock per bucket under a
// shifting Zipfian workload, comparing FlexGuard with POSIX while a
// concurrent busy-waiting workload steals hardware contexts.
package main

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	base, err := harness.MachineConfig("intel")
	if err != nil {
		panic(err)
	}
	cfg := harness.ScaleConfig(base, 0.25)
	workers := cfg.NumCPUs / 2
	fmt.Printf("hash table: 100 buckets / 100 locks, %d worker threads on %d contexts\n\n",
		workers, cfg.NumCPUs)
	fmt.Printf("%-12s %18s %18s\n", "lock", "alone (Mops/s)", "+spinners (Mops/s)")

	for _, alg := range []string{"posix", "flexguard"} {
		fmt.Printf("%-12s", alg)
		for _, spinners := range []int{0, cfg.NumCPUs} {
			r, err := harness.RunHashTable(harness.RunCfg{
				Config:   cfg,
				Alg:      alg,
				Threads:  workers,
				Spinners: spinners,
				Duration: sim.Time(25_000_000),
				Seed:     11,
			})
			if err != nil {
				panic(err)
			}
			fmt.Printf(" %18.3f", r.OpsPerSec/1e6)
		}
		fmt.Println()
	}
	fmt.Println("\nthe spinner column adds a concurrent busy-waiting workload that")
	fmt.Println("preempts lock holders — the scenario where the Preemption Monitor")
	fmt.Println("switches FlexGuard's waiters to blocking.")
}
