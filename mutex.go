package flexguard

import (
	"runtime"
	"sync/atomic"
)

// Mutex states, mirroring the paper's single-variable lock (Listing 2).
const (
	mutexUnlocked = 0
	mutexLocked   = 1
	// mutexLockedWithWaiters: at least one goroutine is blocking; the
	// holder must post a wake token when releasing.
	mutexLockedWithWaiters = 2
)

// spinGoschedEvery bounds how long a spinning waiter runs between
// voluntary scheduling points, so spinning stays preemptible for the Go
// runtime.
const spinGoschedEvery = 64

// Failed acquisition attempts back off exponentially (in spinPause
// calls) between polls, bounded so a waiter never sleeps through a
// release for long: doubling from spinBackoffMin caps at spinBackoffMax
// within a leg and resets when a new leg starts.
const (
	spinBackoffMin = 1
	spinBackoffMax = 128
)

// spinPause burns a few cycles without touching shared memory — the
// portable stand-in for the PAUSE instruction. noinline keeps the call
// (and thus the delay loop around it) from being optimized away.
//
//go:noinline
func spinPause() {}

// Mutex is the native-Go FlexGuard lock: a single-variable lock whose
// waiters busy-wait while the NativeMonitor reports healthy scheduling and
// block (on a channel semaphore, Go's futex analogue) the moment it
// reports oversubscription. The zero value is not usable; call NewMutex.
//
// Mutex intentionally omits the simulator version's MCS queue: Go's
// runtime already multiplexes goroutines over a bounded set of Ps, so the
// cache-line convoy the queue solves on raw hardware does not manifest the
// same way; what transfers is the monitor-driven spin/block policy.
type Mutex struct {
	state atomic.Int32
	wake  chan struct{}
	mon   *NativeMonitor
	// SpinBudget is the number of acquisition attempts per busy-wait leg
	// before rechecking the monitor (tunable; set by NewMutex).
	SpinBudget int
	// Slow-path telemetry (see Snapshot). The fast path stays uncounted.
	slowAcquires  atomic.Int64
	spinAcquires  atomic.Int64
	blockAcquires atomic.Int64
	spinToBlock   atomic.Int64
	blockToSpin   atomic.Int64
}

// NewMutex returns a FlexGuard mutex driven by mon (nil selects the
// process-wide DefaultMonitor).
func NewMutex(mon *NativeMonitor) *Mutex {
	if mon == nil {
		mon = DefaultMonitor()
	}
	return &Mutex{
		wake:       make(chan struct{}, 1),
		mon:        mon,
		SpinBudget: 4096,
	}
}

// TryLock acquires the mutex if it is free.
func (m *Mutex) TryLock() bool {
	return m.state.CompareAndSwap(mutexUnlocked, mutexLocked)
}

// Lock acquires the mutex, busy-waiting in healthy conditions and
// blocking under oversubscription.
func (m *Mutex) Lock() {
	// Fast path: steal the lock if free.
	if m.TryLock() {
		return
	}
	m.slowAcquires.Add(1)
	const (
		modeNone = iota
		modeSpin
		modeBlock
	)
	mode := modeNone
	for {
		if !m.mon.Oversubscribed() {
			// Busy-waiting mode.
			if mode == modeBlock {
				m.blockToSpin.Add(1)
			}
			mode = modeSpin
			if m.spin() {
				m.spinAcquires.Add(1)
				return
			}
			continue
		}
		// Blocking mode: mark the lock and park on the wake channel
		// (Listing 2 lines 52–63, with the channel as the futex).
		if mode == modeSpin {
			m.spinToBlock.Add(1)
		}
		mode = modeBlock
		old := m.state.Swap(mutexLockedWithWaiters)
		if old == mutexUnlocked {
			m.blockAcquires.Add(1)
			return // the swap acquired the lock
		}
		<-m.wake
		old = m.state.Swap(mutexLockedWithWaiters)
		if old == mutexUnlocked {
			m.blockAcquires.Add(1)
			return
		}
		// Woken but lost the race; if the system went back to healthy,
		// restart in busy-waiting mode.
	}
}

// spin busy-waits for one leg, returning true if the lock was acquired.
// It returns false when the monitor flips to oversubscribed or the leg's
// budget is exhausted.
func (m *Mutex) spin() bool {
	backoff := spinBackoffMin
	for i := 0; i < m.SpinBudget; i++ {
		if m.state.Load() == mutexUnlocked && m.TryLock() {
			return true
		}
		// Failed attempt: back off before re-polling so contending
		// waiters stop hammering the lock's cache line at full rate.
		for p := 0; p < backoff; p++ {
			spinPause()
		}
		if backoff < spinBackoffMax {
			backoff <<= 1
		}
		if i%spinGoschedEvery == spinGoschedEvery-1 {
			runtime.Gosched()
			if m.mon.Oversubscribed() {
				return false
			}
		}
	}
	return false
}

// Unlock releases the mutex, waking one blocked waiter if any marked the
// lock.
func (m *Mutex) Unlock() {
	old := m.state.Swap(mutexUnlocked)
	switch old {
	case mutexLocked:
	case mutexLockedWithWaiters:
		// Non-blocking post: the buffer holds at most one token, and a
		// pending token means a wake is already in flight.
		select {
		case m.wake <- struct{}{}:
		default:
		}
	default:
		panic("flexguard: Unlock of unlocked Mutex")
	}
}
